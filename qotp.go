// Package qotp is the public API of the queue-oriented transaction
// processing library, a from-scratch Go reproduction of "A Queue-oriented
// Transaction Processing Paradigm" (Qadah, Middleware 2019).
//
// Applications talk to the store through a Client: individual transactions
// go in (Submit), per-transaction outcomes come out (Future), and an
// internal batch former groups submissions into the deterministic batches
// the engine executes — group commit on size/time triggers, with bounded
// queueing and backpressure:
//
//	gen, _ := qotp.NewYCSB(qotp.YCSBConfig{Partitions: 8, Theta: 0.9})
//	db, _ := qotp.Open(gen, 8)
//	eng, _ := qotp.NewQueCC(db, qotp.QueCCOptions{Planners: 2, Executors: 4, Pipeline: true})
//	cli, _ := qotp.NewClient(eng, qotp.ClientOptions{MaxBatch: 4096, MaxDelay: time.Millisecond})
//	defer cli.Close()
//	sess := cli.Session()
//	out, _ := sess.Exec(ctx, oneTxn)   // out.Committed, out.Latency
//
// The batch interface underneath — NewQueCC/New building an Engine whose
// ExecBatch consumes generator batches directly — remains available as the
// harness interface: benchmarks and determinism tests drive it so batch
// contents stay bit-reproducible. Every baseline protocol the paper compares
// against is constructible through New with a protocol name, so applications
// and experiments can swap concurrency-control strategies behind one
// interface.
//
// See the examples/ directory for runnable programs (examples/quickstart for
// the Client API, examples/server for the TCP client port) and cmd/qotpbench
// for the experiment harness that regenerates the paper's tables and figures.
package qotp

import (
	"fmt"
	"net"

	"github.com/exploratory-systems/qotp/internal/calvin"
	"github.com/exploratory-systems/qotp/internal/core"
	"github.com/exploratory-systems/qotp/internal/engine"
	"github.com/exploratory-systems/qotp/internal/hstore"
	"github.com/exploratory-systems/qotp/internal/metrics"
	"github.com/exploratory-systems/qotp/internal/mvto"
	"github.com/exploratory-systems/qotp/internal/obs"
	"github.com/exploratory-systems/qotp/internal/serve"
	"github.com/exploratory-systems/qotp/internal/silo"
	"github.com/exploratory-systems/qotp/internal/storage"
	"github.com/exploratory-systems/qotp/internal/tictoc"
	"github.com/exploratory-systems/qotp/internal/twopl"
	"github.com/exploratory-systems/qotp/internal/txn"
	"github.com/exploratory-systems/qotp/internal/wal"
	"github.com/exploratory-systems/qotp/internal/workload"
	"github.com/exploratory-systems/qotp/internal/workload/bank"
	"github.com/exploratory-systems/qotp/internal/workload/tpcc"
	"github.com/exploratory-systems/qotp/internal/workload/ycsb"
)

// Re-exported core types. Engine is the common protocol interface; Txn is a
// fragmented transaction; Generator produces deterministic batches; Stats
// and Snapshot report performance.
type (
	// Engine executes transaction batches under one concurrency-control
	// protocol.
	Engine = engine.Engine
	// Txn is a fragmented transaction (paper §3.1).
	Txn = txn.Txn
	// Fragment is one unit of transaction logic bound to a single record.
	Fragment = txn.Fragment
	// Generator produces deterministic transaction batches.
	Generator = workload.Generator
	// Stats is the engine metrics accumulator.
	Stats = metrics.Stats
	// Snapshot is an immutable metrics snapshot.
	Snapshot = metrics.Snapshot
	// DB is an opened, loaded store.
	DB = storage.Store
	// YCSBConfig parameterizes the YCSB workload.
	YCSBConfig = ycsb.Config
	// TPCCConfig parameterizes the TPC-C workload.
	TPCCConfig = tpcc.Config
	// BankConfig parameterizes the bank transfer workload.
	BankConfig = bank.Config
	// Registry maps fragment opcodes to executable logic (Generator.Registry).
	Registry = txn.Registry
)

// Serving-layer types (see NewClient). Outcome is one transaction's verdict
// at its batch commit point; Future its pending result; Session a logical
// client's ordered submission handle; ClientOptions the batch-former tuning;
// RemoteClient the TCP twin of Client used against a ListenAndServe port.
type (
	Outcome       = serve.Outcome
	Future        = serve.Future
	Session       = serve.Session
	SessionStats  = serve.SessionStats
	ClientOptions = serve.Config
	RemoteClient  = serve.RemoteClient
	ClientServer  = serve.TCPServer
	// FailoverClient is Dial's HA twin (see DialFailover): it reconnects
	// across leader failovers and resubmits in-flight transactions, with the
	// cluster-side DedupWindow guaranteeing exactly-once resolution.
	FailoverClient  = serve.FailoverClient
	FailoverOptions = serve.FailoverOptions
	// DedupWindow is the replicated exactly-once resubmission window (see
	// ClientOptions.Dedup); a promoted leader passes the window it rebuilt
	// from log replay so pre-failover commits resolve without re-executing.
	DedupWindow = serve.DedupWindow
	// MetricsRegistry is the observability registry (internal/obs): set
	// ClientOptions.MetricsAddr to expose /healthz, /readyz, and /metrics
	// (Prometheus text + JSON) for the client's lifetime — queue depth,
	// batch fill, forming latency, shed counts, commit/abort/latency series
	// all live. Pass a shared registry via ClientOptions.Metrics to merge
	// several components onto one page; Client.Metrics returns it.
	MetricsRegistry = obs.Registry
)

// NewMetricsRegistry returns an empty observability registry, to be shared
// across components via ClientOptions.Metrics (and the qotpd layers).
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// NewDedupWindow returns an empty exactly-once resubmission window, to be
// filled by replay (DedupWindow.ObserveBatch) and installed as
// ClientOptions.Dedup on a promoted leader's serving layer.
func NewDedupWindow() *DedupWindow { return serve.NewDedupWindow() }

// Serving-layer sentinel errors.
var (
	// ErrOverloaded rejects a submission when the client's bounded queue is
	// full and ClientOptions.Block is false.
	ErrOverloaded = serve.ErrOverloaded
	// ErrClientClosed rejects submissions after Client.Close.
	ErrClientClosed = serve.ErrClosed
	// ErrConnClosed resolves a RemoteClient's outstanding Futures when the
	// client itself closes the connection.
	ErrConnClosed = serve.ErrConnClosed
	// ErrConnLost resolves a RemoteClient's outstanding Futures — and fails
	// its in-flight Submits — when the connection drops out from under it
	// (server crash, network failure). The marked submissions are retryable
	// on a fresh Dial; match with errors.Is.
	ErrConnLost = serve.ErrConnLost
)

// Client is the client-facing submission front end over one engine: Submit
// individual transactions, get per-transaction Futures, let the internal
// batch former group submissions into deterministic batches (group commit on
// MaxBatch/MaxDelay triggers) and route each verdict back at the batch
// commit point. The Client becomes the engine's single driver and — unlike
// the internal serving layer — owns the engine: Close drains accepted work,
// then closes the engine.
type Client struct {
	*serve.Server
	eng Engine
}

// NewClient starts the serving layer over eng (any Engine from New/NewQueCC
// or a distributed constructor). When the engine implements the pipelined
// Submit/Drain driver (QueCCOptions.Pipeline, quecc-pipe, the -pipe
// distributed engines), forming batch k+1 overlaps executing batch k.
func NewClient(eng Engine, opts ClientOptions) (*Client, error) {
	srv, err := serve.New(eng, opts)
	if err != nil {
		return nil, err
	}
	return &Client{Server: srv, eng: eng}, nil
}

// Close stops accepting submissions, drains every accepted transaction
// (their Futures all resolve), closes the engine, and returns the terminal
// engine error if one occurred.
func (c *Client) Close() error {
	err := c.Server.Close()
	c.eng.Close()
	return err
}

// ListenAndServe exposes the client on a TCP address (the "client port"):
// remote RemoteClients submit wire-encoded transactions and receive
// per-transaction outcomes. reg resolves incoming opcodes to logic — pass
// the workload generator's Registry(). Returns the running server (its Addr
// reports the bound address for ":0" listeners).
func (c *Client) ListenAndServe(addr string, reg Registry) (*ClientServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return serve.ServeTCP(lis, c.Server, reg), nil
}

// Dial connects a RemoteClient to a Client's TCP port.
func Dial(addr string) (*RemoteClient, error) { return serve.DialTCP(addr) }

// DialFailover connects a FailoverClient to a replicated cluster's advertised
// peer list. Every transaction is stamped with (ClientID, ClientSeq); on a
// lost connection — or an explicit retry verdict from a demoted leader — the
// client redials the list until the promoted leader answers and resubmits its
// in-flight transactions, which the new leader's dedup window resolves
// exactly once.
func DialFailover(opts FailoverOptions) (*FailoverClient, error) {
	return serve.DialFailover(opts)
}

// ErrAbort aborts the enclosing transaction when returned by fragment logic.
var ErrAbort = txn.ErrAbort

// Durability types (see OpenWAL/RecoverWAL). WAL is the segmented write-ahead
// log; install it as ClientOptions.WAL (the serving layer logs each formed
// batch before dispatch) or QueCCOptions.Logger (the engine logs each batch
// before commit) — one of the two, not both. RecoveryInfo summarizes a
// RecoverWAL pass.
type (
	WAL          = wal.Writer
	WALOptions   = wal.Options
	RecoveryInfo = wal.RecoveryInfo
)

// WAL sync policies (WALOptions.Sync): fsync per batch, per group of batches,
// or never.
const (
	WALSyncEachBatch = wal.SyncEachBatch
	WALSyncGroup     = wal.SyncGroup
	WALSyncOff       = wal.SyncOff
)

// OpenWAL creates or reopens the write-ahead log in dir, repairing any torn
// tail from a crash. To rebuild state after a crash, call RecoverWAL first —
// OpenWAL truncates unreachable bytes, RecoverWAL only reads.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// RecoverWAL rebuilds pre-crash state from a wal directory into db: it
// restores the latest snapshot (if any) and replays every intact logged batch
// through a fresh engine, reproducing the pre-crash StateHash. db must be
// freshly opened and loaded (Open with the same generator config as the
// crashed run); reg is the workload's Registry(). Per the client contract,
// recovery re-resolves nothing — submissions in flight at the crash are the
// clients' to resubmit. Afterwards, OpenWAL the same dir and resume.
func RecoverWAL(dir string, db *DB, reg Registry) (RecoveryInfo, error) {
	eng, err := core.New(db, core.Config{Planners: 1, Executors: 2})
	if err != nil {
		return RecoveryInfo{}, err
	}
	defer eng.Close()
	return wal.RecoverFrom(dir, nil, db, reg, func(_ uint64, txns []*Txn) error {
		return eng.ExecBatch(txns)
	})
}

// Open creates a store for the generator's schema and loads the initial
// database.
func Open(gen Generator, partitions int) (*DB, error) {
	s, err := storage.Open(gen.StoreConfig(partitions))
	if err != nil {
		return nil, err
	}
	if err := gen.Load(s); err != nil {
		return nil, fmt.Errorf("qotp: load: %w", err)
	}
	return s, nil
}

// Mechanism selects the queue-execution mechanism (paper §3.2).
type Mechanism = core.Mechanism

// Isolation selects the isolation level (paper §3.2).
type Isolation = core.Isolation

// Re-exported mechanism and isolation constants.
const (
	Speculative   = core.Speculative
	Conservative  = core.Conservative
	Serializable  = core.Serializable
	ReadCommitted = core.ReadCommitted
)

// QueCCOptions configures the queue-oriented engine.
type QueCCOptions struct {
	// Planners and Executors are the two phases' thread counts (both
	// default to 2).
	Planners  int
	Executors int
	// Mechanism defaults to Speculative; Isolation to Serializable.
	Mechanism Mechanism
	Isolation Isolation
	// Logger, when non-nil, receives each batch before commit (see the
	// wal package).
	Logger core.BatchLogger
	// Pipeline enables the Submit/Drain driver: planning of batch k+1
	// overlaps execution of batch k (see core.Config.Pipeline).
	Pipeline bool
	// CrossBatch enables cross-batch speculative execution (implies
	// Pipeline; requires the Speculative mechanism and Serializable
	// isolation): batch k+1 executes before batch k's verdict fixpoint
	// completes, and an abort in k cascades onto k+1 through a joint repair
	// (see core.Config.CrossBatch). Pair with ClientOptions.SpeculativeAcks
	// for early, revocable client acknowledgements.
	CrossBatch bool
}

// NewQueCC creates the paper's queue-oriented deterministic engine.
func NewQueCC(db *DB, opts QueCCOptions) (Engine, error) {
	if opts.Planners == 0 {
		opts.Planners = 2
	}
	if opts.Executors == 0 {
		opts.Executors = 2
	}
	return core.New(db, core.Config{
		Planners:   opts.Planners,
		Executors:  opts.Executors,
		Mechanism:  opts.Mechanism,
		Isolation:  opts.Isolation,
		Logger:     opts.Logger,
		Pipeline:   opts.Pipeline,
		CrossBatch: opts.CrossBatch,
	})
}

// Protocols lists the centralized protocol names accepted by New.
func Protocols() []string {
	return []string{
		"quecc", "quecc-cons", "quecc-rc", "quecc-pipe", "quecc-spec",
		"hstore", "calvin",
		"2pl-nowait", "2pl-waitdie", "silo", "tictoc", "mvto",
	}
}

// New constructs a centralized engine by protocol name with `threads`
// workers (for the queue engine: 2 planners and `threads` executors).
func New(name string, db *DB, threads int) (Engine, error) {
	switch name {
	case "quecc":
		return NewQueCC(db, QueCCOptions{Planners: 2, Executors: threads})
	case "quecc-cons":
		return NewQueCC(db, QueCCOptions{Planners: 2, Executors: threads, Mechanism: Conservative})
	case "quecc-rc":
		return NewQueCC(db, QueCCOptions{Planners: 2, Executors: threads, Isolation: ReadCommitted})
	case "quecc-pipe":
		return NewQueCC(db, QueCCOptions{Planners: 2, Executors: threads, Pipeline: true})
	case "quecc-spec":
		return NewQueCC(db, QueCCOptions{Planners: 2, Executors: threads, CrossBatch: true})
	case "hstore":
		return hstore.New(db, threads)
	case "calvin":
		return calvin.New(db, threads)
	case "2pl-nowait":
		return twopl.New(db, twopl.NoWait, threads)
	case "2pl-waitdie":
		return twopl.New(db, twopl.WaitDie, threads)
	case "silo":
		return silo.New(db, threads)
	case "tictoc":
		return tictoc.New(db, threads)
	case "mvto":
		return mvto.New(db, threads)
	default:
		return nil, fmt.Errorf("qotp: unknown protocol %q (have %v)", name, Protocols())
	}
}

// NewYCSB constructs the YCSB workload generator.
func NewYCSB(cfg YCSBConfig) (Generator, error) { return ycsb.New(cfg) }

// NewTPCC constructs the TPC-C workload generator.
func NewTPCC(cfg TPCCConfig) (Generator, error) { return tpcc.New(cfg) }

// NewBank constructs the bank-transfer workload generator.
func NewBank(cfg BankConfig) (Generator, error) { return bank.New(cfg) }

// StateHash fingerprints the database state (determinism checks).
func StateHash(db *DB) uint64 { return db.StateHash() }

// BankTotal sums all account balances of a bank-workload database (the
// conservation invariant).
func BankTotal(db *DB) uint64 { return bank.TotalBalance(db) }

// BankMin returns the smallest account balance (negative values expose
// isolation violations).
func BankMin(db *DB) int64 { return bank.MinBalance(db) }

// TPCCCheck runs the TPC-C consistency conditions against a database
// produced by the given generator (must be the same instance that generated
// the executed transactions).
func TPCCCheck(gen Generator, db *DB) error {
	tg, ok := gen.(*tpcc.Workload)
	if !ok {
		return fmt.Errorf("qotp: TPCCCheck requires a TPC-C generator, got %s", gen.Name())
	}
	return tg.CheckConsistency(db)
}
