module github.com/exploratory-systems/qotp

go 1.24
