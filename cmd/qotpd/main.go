// Command qotpd demonstrates the distributed queue-oriented engine over the
// real TCP transport (stdlib net + gob framing): it launches an n-node
// cluster on loopback sockets, runs a multi-partition workload through
// QueCC-D, and verifies the cluster state against a serial centralized run.
//
// The -workload tpcc variant runs distributed TPC-C (partition-per-warehouse)
// with remote NewOrder lines, whose item prices are forwarded across nodes in
// the MsgVars round — cross-node data dependencies over real sockets.
//
// With -pipeline the leader runs the Submit/Drain pipelined driver: batch
// k+1 is planned and encoded while the cluster executes batch k over the
// sockets — the leader-side overlap, verified against the same serial
// reference.
//
// Usage:
//
//	qotpd -nodes 4 -batches 10 -batch 2000
//	qotpd -nodes 4 -workload tpcc -warehouses 8 -remote 0.1
//	qotpd -nodes 4 -pipeline
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/exploratory-systems/qotp/internal/cluster"
	"github.com/exploratory-systems/qotp/internal/core"
	"github.com/exploratory-systems/qotp/internal/dist"
	"github.com/exploratory-systems/qotp/internal/storage"
	"github.com/exploratory-systems/qotp/internal/workload"
	"github.com/exploratory-systems/qotp/internal/workload/tpcc"
	"github.com/exploratory-systems/qotp/internal/workload/ycsb"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 2, "cluster size")
		batches    = flag.Int("batches", 5, "number of batches")
		batchSize  = flag.Int("batch", 2000, "transactions per batch")
		execs      = flag.Int("executors", 2, "executors per node")
		wl         = flag.String("workload", "ycsb", "workload: ycsb or tpcc")
		warehouses = flag.Int("warehouses", 0, "tpcc warehouses (default 2x nodes; must be >= nodes)")
		remote     = flag.Float64("remote", 0.1, "tpcc remote order-line fraction (cross-node data dependencies)")
		pipeline   = flag.Bool("pipeline", false, "pipelined leader: plan/encode batch k+1 while the cluster executes batch k")
	)
	flag.Parse()
	if *nodes < 1 {
		log.Fatalf("qotpd: -nodes must be >= 1, got %d", *nodes)
	}
	if *batches < 1 || *batchSize < 1 || *execs < 1 {
		log.Fatal("qotpd: -batches, -batch and -executors must be >= 1")
	}

	var parts int
	var mkGen func() workload.Generator
	switch *wl {
	case "ycsb":
		parts = *nodes * 2
		mkGen = func() workload.Generator {
			return ycsb.MustNew(ycsb.Config{
				Records: 1 << 14, OpsPerTxn: 8, ReadRatio: 0.5, RMWRatio: 0.25,
				Theta: 0.6, MultiPartitionRatio: 0.3, MultiPartitionCount: 2,
				Partitions: parts, Seed: 99,
			})
		}
	case "tpcc":
		w := *warehouses
		if w == 0 {
			w = *nodes * 2
		}
		if w < *nodes {
			log.Fatalf("qotpd: -warehouses (%d) must be >= -nodes (%d): TPC-C is partition-per-warehouse", w, *nodes)
		}
		parts = w
		mkGen = func() workload.Generator {
			return tpcc.MustNew(tpcc.Config{
				Warehouses: w, Partitions: w,
				Items: 2000, CustomersPerDistrict: 300, InitialOrdersPerDistrict: 50,
				RemoteStockProb: *remote, Seed: 99,
			})
		}
	default:
		log.Fatalf("qotpd: unknown workload %q (have ycsb, tpcc)", *wl)
	}

	// Serial reference for verification.
	refGen := mkGen()
	refStore := storage.MustOpen(refGen.StoreConfig(parts))
	if err := refGen.Load(refStore); err != nil {
		log.Fatal(err)
	}
	refEng, err := core.New(refStore, core.Config{Planners: 1, Executors: 1})
	if err != nil {
		log.Fatal(err)
	}
	for b := 0; b < *batches; b++ {
		if err := refEng.ExecBatch(refGen.NextBatch(*batchSize)); err != nil {
			log.Fatal(err)
		}
	}

	// Real TCP transports on loopback: bind with :0, then share addresses.
	// qotpd demonstrates the wire path in one process; production deploys one
	// TCPTransport per host with a static address list.
	addrs := make([]string, *nodes)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	transports := make([]*cluster.TCPTransport, *nodes)
	for i := range transports {
		transports[i] = cluster.NewTCPTransport(i, addrs)
		if err := transports[i].Start(); err != nil {
			log.Fatal(err)
		}
		addrs[i] = transports[i].Addr()
		fmt.Printf("node %d listening on %s\n", i, addrs[i])
	}
	for _, tr := range transports {
		if err := tr.Connect(); err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
	}

	// QueCC-D drives all nodes; node 0's transport carries the leader role.
	// The engine is transport-agnostic: the same code ran over ChanTransport
	// in the benchmarks.
	multi := &fanTransport{transports: transports}
	gen := mkGen()
	var opts []dist.Option
	if *pipeline {
		opts = append(opts, dist.ArgPipeline)
	}
	eng, err := dist.NewQueCCD(multi, gen, parts, *execs, opts...)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for b := 0; b < *batches; b++ {
		if *pipeline {
			err = eng.Submit(gen.NextBatch(*batchSize))
		} else {
			err = eng.ExecBatch(gen.NextBatch(*batchSize))
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	snap := eng.Stats().Snap(elapsed)
	fmt.Printf("\ncommitted %d txns in %v over TCP — %.0f txn/s, %d messages\n",
		snap.Committed, elapsed.Round(time.Millisecond), snap.Throughput, multi.Messages())

	var tables []storage.TableID
	for _, ts := range mkGen().StoreConfig(parts).Tables {
		tables = append(tables, ts.ID)
	}
	got := dist.ClusterStateHash(eng.Stores(), tables)
	want := refStore.StateHash()
	if got != want {
		log.Fatalf("cluster state %x != serial reference %x", got, want)
	}
	fmt.Printf("cluster state hash %x matches the serial reference — deterministic over real sockets\n", got)
}

// fanTransport adapts N per-node TCP transports (one per "host", here all
// in-process) to the single Transport interface the engine drives.
type fanTransport struct {
	transports []*cluster.TCPTransport
}

func (f *fanTransport) Nodes() int { return len(f.transports) }

func (f *fanTransport) Send(m cluster.Msg) error { return f.transports[m.From].Send(m) }

func (f *fanTransport) Recv(id int) (cluster.Msg, bool) { return f.transports[id].Recv(id) }

func (f *fanTransport) Messages() uint64 {
	var n uint64
	for _, tr := range f.transports {
		n += tr.Messages()
	}
	return n
}

func (f *fanTransport) Bytes() uint64 {
	var n uint64
	for _, tr := range f.transports {
		n += tr.Bytes()
	}
	return n
}

func (f *fanTransport) Close() {
	for _, tr := range f.transports {
		tr.Close()
	}
}
