// Command qotpd demonstrates the distributed queue-oriented engine over the
// real TCP transport (stdlib net + gob framing): it launches an n-node
// cluster on loopback sockets, runs a multi-partition workload through
// QueCC-D, and verifies the cluster state against a serial centralized run.
//
// The -workload tpcc variant runs distributed TPC-C (partition-per-warehouse)
// with remote NewOrder lines, whose item prices are forwarded across nodes in
// the MsgVars round — cross-node data dependencies over real sockets.
//
// With -pipeline the leader runs the Submit/Drain pipelined driver: batch
// k+1 is planned and encoded while the cluster executes batch k over the
// sockets — the leader-side overlap, verified against the same serial
// reference.
//
// With -serve the daemon opens a client port in front of the distributed
// leader: the batch-native cluster is driven not by a harness loop but by
// remote clients submitting single transactions over TCP (serve.RemoteClient),
// which the leader's batch former groups into deterministic batches
// (group commit on -batch / -maxdelay triggers) and answers one outcome per
// transaction. -clients/-ctxns size the demo load; -loop picks closed
// (submit, wait, repeat) or open (submit continuously against the bounded
// queue). With -clients 1 the submission order is deterministic, so the
// cluster state is additionally verified against the serial reference over
// the full wire path.
//
// With -waldir the leader writes every batch's input to a segmented
// write-ahead log before shipping it (sync policy per -walsync). On startup
// the same flag recovers: intact logged batches are replayed through the
// cluster, the generator stream advances past them, and the run continues
// mid-stream — a killed cluster restarts where the log ends. -crashafter n
// simulates the kill: the process exits without cleanup after n batches.
//
// With -replicas n the leader streams its queue log to n standby full
// replicas over a second loopback TCP mesh (internal/repl): each follower
// persists the batch inputs at the leader's epochs and applies them through
// its own serial engine, so every standby independently reproduces the
// cluster state. -ackmode picks the durability price (async, or k=N to gate
// each commit on N follower acks with bounded degradation when followers
// die). -killnode b severs follower 1's sockets and goroutines after batch b
// — the leader keeps committing — and -rejoin b2 restarts it after batch b2:
// the follower replays its local log, asks the leader for the missing tail,
// and re-enters the live stream mid-run without stopping the cluster. At
// exit every replica's state hash is checked against the cluster (and, when
// deterministic, the serial reference).
//
// With -failover the fault flips sides: the replication LEADER is SIGKILLed
// at batch -leaderkill (randomized when 0). The followers' failure detectors
// fire, they run the deterministic claim-exchange election among themselves
// (longest durable prefix wins, ties to the lowest node id — no external
// coordinator), the winner reopens its sealed log at the bumped term, and the
// batch stream resumes through the promoted node, which now both replicates
// to the survivors and applies locally. Requires -ackmode k=N so every batch
// the cluster committed is follower-durable — the demo then pins every
// surviving replica's state hash against the serial reference.
//
// Usage:
//
//	qotpd -nodes 4 -batches 10 -batch 2000
//	qotpd -nodes 4 -workload tpcc -warehouses 8 -remote 0.1
//	qotpd -nodes 4 -pipeline
//	qotpd -nodes 2 -serve -clients 8 -ctxns 1000 -loop open
//	qotpd -nodes 2 -serve -clients 1 -pipeline
//	qotpd -nodes 2 -batches 6 -waldir /tmp/qotpd-wal -crashafter 3
//	qotpd -nodes 2 -batches 6 -waldir /tmp/qotpd-wal   # recovers, finishes, verifies
//	qotpd -nodes 2 -batches 10 -replicas 2 -ackmode k=1 -killnode 3 -rejoin 7
//	qotpd -nodes 2 -batches 10 -replicas 2 -ackmode k=1 -failover -leaderkill 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"github.com/exploratory-systems/qotp/internal/cluster"
	"github.com/exploratory-systems/qotp/internal/core"
	"github.com/exploratory-systems/qotp/internal/dist"
	"github.com/exploratory-systems/qotp/internal/obs"
	"github.com/exploratory-systems/qotp/internal/repl"
	"github.com/exploratory-systems/qotp/internal/serve"
	"github.com/exploratory-systems/qotp/internal/storage"
	"github.com/exploratory-systems/qotp/internal/txn"
	"github.com/exploratory-systems/qotp/internal/wal"
	"github.com/exploratory-systems/qotp/internal/workload"
	"github.com/exploratory-systems/qotp/internal/workload/tpcc"
	"github.com/exploratory-systems/qotp/internal/workload/ycsb"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 2, "cluster size")
		batches    = flag.Int("batches", 5, "number of batches")
		batchSize  = flag.Int("batch", 2000, "transactions per batch (MaxBatch in -serve mode)")
		execs      = flag.Int("executors", 2, "executors per node")
		wl         = flag.String("workload", "ycsb", "workload: ycsb or tpcc")
		warehouses = flag.Int("warehouses", 0, "tpcc warehouses (default 2x nodes; must be >= nodes)")
		remote     = flag.Float64("remote", 0.1, "tpcc remote order-line fraction (cross-node data dependencies)")
		pipeline   = flag.Bool("pipeline", false, "pipelined leader: plan/encode batch k+1 while the cluster executes batch k")
		serveMode  = flag.Bool("serve", false, "open a TCP client port in front of the leader and drive it with remote clients")
		clients    = flag.Int("clients", 8, "concurrent remote clients (-serve mode)")
		ctxns      = flag.Int("ctxns", 1000, "transactions submitted per client (-serve mode)")
		loop       = flag.String("loop", "closed", "client loop in -serve mode: closed or open")
		maxDelay   = flag.Duration("maxdelay", time.Millisecond, "batch former MaxDelay (-serve mode)")
		waldir     = flag.String("waldir", "", "write-ahead log directory on the leader: recover from it, then log every batch")
		walsync    = flag.String("walsync", "each", "wal sync policy: each (fsync per batch), group, or off")
		crashAfter = flag.Int("crashafter", 0, "simulate a kill: exit without cleanup after this many batches this run (0 = never)")
		replicas   = flag.Int("replicas", 0, "standby full replicas streaming the leader's queue log over their own TCP mesh (0 = replication off)")
		ackmode    = flag.String("ackmode", "async", "replication ack mode: async, or k=N to gate each commit on N follower acks")
		killNode   = flag.Int("killnode", 0, "sever replica follower 1 (sockets + goroutines, log kept) after this many batches (0 = never; requires -replicas and -rejoin)")
		rejoinAt   = flag.Int("rejoin", 0, "restart the killed follower after this many batches: replay local log, fetch the gap, rejoin live (requires -killnode)")
		failover   = flag.Bool("failover", false, "SIGKILL the replication leader mid-stream and let the followers elect a replacement with no external coordinator (requires -replicas >= 2 and -ackmode k=N)")
		leaderKill = flag.Int("leaderkill", 0, "sever the replication leader after this many batches (-failover mode; 0 = a randomized mid-stream batch)")
		httpAddr   = flag.String("http", "", "observability HTTP endpoint exposing /healthz, /readyz and /metrics (Prometheus text + JSON) for queue depth, batch fill, repl lag, WAL fsync latency and more; e.g. :8080 (empty = off)")
		linger     = flag.Duration("linger", 0, "keep the process and its -http endpoint alive this long after the final report, so an external scraper can take a last sample that matches the printed numbers (requires -http)")
	)
	flag.Parse()
	if *nodes < 1 {
		log.Fatalf("qotpd: -nodes must be >= 1, got %d", *nodes)
	}
	if *batches < 1 || *batchSize < 1 || *execs < 1 {
		log.Fatal("qotpd: -batches, -batch and -executors must be >= 1")
	}
	if *serveMode && (*clients < 1 || *ctxns < 1) {
		log.Fatal("qotpd: -clients and -ctxns must be >= 1")
	}
	if *loop != "closed" && *loop != "open" {
		log.Fatalf("qotpd: -loop must be closed or open, got %q", *loop)
	}
	var walPolicy wal.SyncPolicy
	switch *walsync {
	case "each":
		walPolicy = wal.SyncEachBatch
	case "group":
		walPolicy = wal.SyncGroup
	case "off":
		walPolicy = wal.SyncOff
	default:
		log.Fatalf("qotpd: -walsync must be each, group or off, got %q", *walsync)
	}
	if *waldir != "" && *serveMode {
		// Concurrent remote clients make the submission stream nondeterministic,
		// so the generator cannot be advanced past replayed batches; use
		// ClientOptions.WAL through the library for a serving-path log.
		log.Fatal("qotpd: -waldir is a harness-mode flag; it cannot be combined with -serve")
	}
	if *replicas > 0 {
		if *waldir != "" {
			log.Fatal("qotpd: -replicas subsumes -waldir — the replicated queue log IS the leader's write-ahead log")
		}
		if *crashAfter > 0 {
			log.Fatal("qotpd: -crashafter demonstrates single-node WAL recovery (-waldir); with -replicas use -killnode/-rejoin instead")
		}
	}
	if *killNode > 0 && (*replicas < 1 || *rejoinAt <= *killNode) {
		log.Fatal("qotpd: -killnode requires -replicas >= 1 and -rejoin > -killnode (the demo kills AND rejoins)")
	}
	if *rejoinAt > 0 && *killNode == 0 {
		log.Fatal("qotpd: -rejoin requires -killnode")
	}
	if _, _, err := repl.ParseAckMode(*ackmode); err != nil {
		log.Fatalf("qotpd: %v", err)
	}
	if *failover {
		if *replicas < 2 {
			log.Fatal("qotpd: -failover requires -replicas >= 2 (the survivors elect among themselves)")
		}
		if *serveMode {
			log.Fatal("qotpd: -failover is a harness-mode demo; it cannot be combined with -serve")
		}
		if *killNode > 0 {
			log.Fatal("qotpd: -failover and -killnode are separate fault schedules; pick one")
		}
		if ack, _, _ := repl.ParseAckMode(*ackmode); ack != repl.AckWaitK {
			// The acked-commit guarantee is what the demo pins: with async acks
			// the engine may run ahead of replication, and batches only the dead
			// leader held are legitimately lost — but then the cluster state
			// cannot be checked against the replicas.
			log.Fatal("qotpd: -failover requires -ackmode k=N so every committed batch is follower-durable")
		}
		if *leaderKill == 0 {
			*leaderKill = 2 + rand.Intn(max(*batches-3, 1))
		}
		if *leaderKill >= *batches {
			log.Fatalf("qotpd: -leaderkill %d must leave batches to run after the failover (-batches %d)", *leaderKill, *batches)
		}
	} else if *leaderKill > 0 {
		log.Fatal("qotpd: -leaderkill requires -failover")
	}
	if *linger > 0 && *httpAddr == "" {
		log.Fatal("qotpd: -linger requires -http")
	}

	// Observability: one registry shared by every layer — serve, repl, wal,
	// cluster, the engine — rendered live at -http. All layer config fields
	// accept a nil registry, so the wiring below is unconditional.
	var reg *obs.Registry
	var obsSrv *obs.HTTPServer
	if *httpAddr != "" {
		reg = obs.New()
		s, err := obs.Serve(*httpAddr, reg)
		if err != nil {
			log.Fatalf("qotpd: %v", err)
		}
		obsSrv = s
		fmt.Printf("observability endpoint on http://%s (/healthz /readyz /metrics)\n", s.Addr())
	}
	// finishObs runs AFTER the end-of-run report prints: every counter behind
	// the registry is final by then (the formers are drained), so a scrape
	// during the linger window matches the printed numbers exactly. Only then
	// is the listener closed.
	finishObs := func() {
		if obsSrv == nil {
			return
		}
		if *linger > 0 {
			fmt.Printf("obs endpoint lingering %v at %s for a final scrape\n", *linger, obsSrv.Addr())
			time.Sleep(*linger)
		}
		_ = obsSrv.Close()
	}

	var parts int
	var mkGen func() workload.Generator
	switch *wl {
	case "ycsb":
		parts = *nodes * 2
		mkGen = func() workload.Generator {
			return ycsb.MustNew(ycsb.Config{
				Records: 1 << 14, OpsPerTxn: 8, ReadRatio: 0.5, RMWRatio: 0.25,
				Theta: 0.6, MultiPartitionRatio: 0.3, MultiPartitionCount: 2,
				Partitions: parts, Seed: 99,
			})
		}
	case "tpcc":
		w := *warehouses
		if w == 0 {
			w = *nodes * 2
		}
		if w < *nodes {
			log.Fatalf("qotpd: -warehouses (%d) must be >= -nodes (%d): TPC-C is partition-per-warehouse", w, *nodes)
		}
		parts = w
		mkGen = func() workload.Generator {
			return tpcc.MustNew(tpcc.Config{
				Warehouses: w, Partitions: w,
				Items: 2000, CustomersPerDistrict: 300, InitialOrdersPerDistrict: 50,
				RemoteStockProb: *remote, Seed: 99,
			})
		}
	default:
		log.Fatalf("qotpd: unknown workload %q (have ycsb, tpcc)", *wl)
	}

	// Serial reference for verification. A deterministic submission order is
	// required, so it applies to the harness mode and to -serve with a single
	// closed-loop client; concurrent clients interleave nondeterministically
	// and are verified by outcome accounting instead.
	verifiable := !*serveMode || (*clients == 1 && *loop == "closed")
	var refStore *storage.Store
	if verifiable {
		refGen := mkGen()
		refStore = storage.MustOpen(refGen.StoreConfig(parts))
		if err := refGen.Load(refStore); err != nil {
			log.Fatal(err)
		}
		refEng, err := core.New(refStore, core.Config{Planners: 1, Executors: 1})
		if err != nil {
			log.Fatal(err)
		}
		total := *batches * *batchSize
		if *serveMode {
			total = *clients * *ctxns
		}
		for total > 0 {
			n := min(total, *batchSize)
			total -= n
			if err := refEng.ExecBatch(refGen.NextBatch(n)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Real TCP transports on loopback (cluster.StartLoopbackTCP): bind with
	// :0, share addresses, connect the mesh. qotpd demonstrates the wire
	// path in one process; production deploys one TCPTransport per host with
	// a static address list.
	engineMeshOpts := cluster.DefaultTCPOptions()
	engineMeshOpts.Metrics, engineMeshOpts.MetricsMesh = reg, "engine"
	multi, err := cluster.StartLoopbackTCPOpts(*nodes, engineMeshOpts)
	if err != nil {
		log.Fatal(err)
	}
	defer multi.Close()
	for i, addr := range multi.Addrs() {
		fmt.Printf("node %d listening on %s\n", i, addr)
	}

	// QueCC-D drives all nodes; node 0's transport carries the leader role.
	// The engine is transport-agnostic: the same code ran over ChanTransport
	// in the benchmarks.
	gen := mkGen()
	var opts []dist.Option
	if *pipeline {
		opts = append(opts, dist.ArgPipeline)
	}
	eng, err := dist.NewQueCCD(multi, gen, parts, *execs, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		obs.CollectStats(reg, "qotp_engine", eng.Stats())
	}

	// Recovery before logging: replay the log's intact batches through the
	// cluster (read-only pass), advance the generator past them, then open the
	// writer and continue the stream where the crashed run's log ends.
	recovered := 0
	if *waldir != "" {
		info, err := wal.RecoverFrom(*waldir, nil, nil, gen.Registry(), func(_ uint64, txns []*txn.Txn) error {
			return eng.ExecBatch(txns)
		})
		if err != nil {
			log.Fatal(err)
		}
		recovered = int(info.NextEpoch)
		if recovered > 0 {
			fmt.Printf("recovered %d batches from %s\n", recovered, *waldir)
			for i := 0; i < recovered; i++ {
				gen.NextBatch(*batchSize) // replayed input: skip, don't re-run
			}
		}
		w, err := wal.Open(*waldir, wal.Options{Sync: walPolicy, Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		eng.SetLogger(w)
	}

	// Replication: a standby fleet on its own loopback TCP mesh, fed by the
	// engine's batch-logger hook. The hook also drives the fault schedule —
	// kill and rejoin land exactly at batch boundaries.
	var rs *replSet
	if *replicas > 0 {
		rs, err = startRepl(*replicas, *ackmode, *killNode, *rejoinAt, *leaderKill, mkGen, parts, *execs, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer rs.Close()
		eng.SetLogger(rs)
		fmt.Printf("replication: %d standby replicas on their own TCP mesh, ack=%s\n", *replicas, *ackmode)
	}

	if *serveMode {
		srv, err := serve.New(eng, serve.Config{MaxBatch: *batchSize, MaxDelay: *maxDelay, Block: true, Metrics: reg})
		if err != nil {
			log.Fatal(err)
		}
		serveClients(srv, gen, *clients, *ctxns, *batchSize, *loop == "open")
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		verifyHash(eng, mkGen, parts, refStore)
		if rs != nil {
			rs.finish(eng, mkGen, parts, refStore != nil)
		}
		finishObs()
		return
	}

	start := time.Now()
	for b := 0; b < *batches-recovered; b++ {
		if *pipeline {
			err = eng.Submit(gen.NextBatch(*batchSize))
		} else {
			err = eng.ExecBatch(gen.NextBatch(*batchSize))
		}
		if err != nil {
			log.Fatal(err)
		}
		if *crashAfter > 0 && b+1 >= *crashAfter {
			// Simulated kill: no Drain, no Close, no wal.Close — the log holds
			// whatever the sync policy made durable. A rerun with the same
			// -waldir recovers and finishes the stream.
			fmt.Printf("simulated crash after %d batches (wal holds the input; rerun to recover)\n", b+1)
			os.Exit(0)
		}
	}
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	snap := eng.Stats().Snap(elapsed)
	fmt.Printf("\ncommitted %d txns in %v over TCP — %.0f txn/s, %d messages\n",
		snap.Committed, elapsed.Round(time.Millisecond), snap.Throughput, multi.Messages())
	verifyHash(eng, mkGen, parts, refStore)
	if rs != nil {
		rs.finish(eng, mkGen, parts, refStore != nil)
	}
	finishObs()
}

// verifyHash checks the cluster state against the serial reference when one
// exists (nil refStore = nondeterministic submission order, skip).
func verifyHash(eng *dist.QueCCD, mkGen func() workload.Generator, parts int, refStore *storage.Store) {
	if refStore == nil {
		fmt.Println("state-hash verification skipped: concurrent clients have no deterministic reference order")
		return
	}
	var tables []storage.TableID
	for _, ts := range mkGen().StoreConfig(parts).Tables {
		tables = append(tables, ts.ID)
	}
	got := dist.ClusterStateHash(eng.Stores(), tables)
	want := refStore.StateHash()
	if got != want {
		log.Fatalf("cluster state %x != serial reference %x", got, want)
	}
	fmt.Printf("cluster state hash %x matches the serial reference — deterministic over real sockets\n", got)
}

// replicaNode is one standby full replica: a loaded store and a serial
// engine that applies the replicated batch stream. Applying the leader's
// logged inputs through a deterministic engine reproduces the leader's exact
// state — the stream of batch inputs IS the replication protocol.
type replicaNode struct {
	store *storage.Store
	eng   *core.Engine
	gen   workload.Generator
}

func newReplicaNode(mkGen func() workload.Generator, parts, execs int) (*replicaNode, error) {
	gen := mkGen()
	store := storage.MustOpen(gen.StoreConfig(parts))
	if err := gen.Load(store); err != nil {
		return nil, err
	}
	eng, err := core.New(store, core.Config{Planners: 1, Executors: execs})
	if err != nil {
		return nil, err
	}
	return &replicaNode{store: store, eng: eng, gen: gen}, nil
}

func (r *replicaNode) followerOptions(dir string) repl.FollowerOptions {
	return repl.FollowerOptions{
		Dir: dir, Store: r.store, Registry: r.gen.Registry(),
		Apply:     func(_ uint64, txns []*txn.Txn) error { return r.eng.ExecBatch(txns) },
		Heartbeat: 20 * time.Millisecond,
	}
}

// applyEncoded decodes one replicated batch and executes it on the replica's
// own engine — the promoted node's apply path once it leads the stream (fresh
// transaction objects, exactly as a follower would decode them off the wire).
func (r *replicaNode) applyEncoded(payload []byte) error {
	txns, _, err := txn.DecodeBatch(payload)
	if err != nil {
		return err
	}
	reg := r.gen.Registry()
	for _, t := range txns {
		if err := reg.Resolve(t); err != nil {
			return err
		}
	}
	return r.eng.ExecBatch(txns)
}

// replSet is the -replicas standby fleet: leader endpoint 0 plus n follower
// endpoints on a dedicated loopback TCP mesh, each follower a full replica.
// It implements core.BatchLogger, so it plugs straight into the engine's
// durability hook; the hook counts batches and fires the -killnode/-rejoin
// fault schedule at exact batch boundaries.
type replSet struct {
	lb     *cluster.LoopbackTCP
	leader *repl.Leader
	root   string // temp root holding every node's log directory
	dirs   []string
	reps   []*replicaNode
	fls    []*repl.Follower

	mkGen        func() workload.Generator
	parts, execs int
	reg          *obs.Registry

	killAt, rejoinAt int
	batches          int

	// -failover state: the leader-kill schedule, the election outcome channel
	// the followers' OnPromoted callbacks report on, and — once a follower has
	// won — the reopened leader on the winner's log plus the winner's replica
	// index (its engine applies the continued stream; it leads now).
	leaderKillAt  int
	ack           repl.AckMode
	waitFor       int
	promoCh       chan promoted
	newLeader     *repl.Leader
	winner        int
	scratch       []byte
}

// promoted is one follower's election win, as reported by its OnPromoted hook.
type promoted struct {
	id   int
	term uint64
}

func startRepl(n int, ackmode string, killAt, rejoinAt, leaderKillAt int, mkGen func() workload.Generator, parts, execs int, reg *obs.Registry) (*replSet, error) {
	ack, waitFor, err := repl.ParseAckMode(ackmode)
	if err != nil {
		return nil, err
	}
	lb, err := cluster.StartLoopbackTCPOpts(n+1, cluster.TCPOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		SuspectAfter:   300 * time.Millisecond,
		Metrics:        reg,
		MetricsMesh:    "repl",
	})
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "qotpd-repl-")
	if err != nil {
		lb.Close()
		return nil, err
	}
	rs := &replSet{
		lb: lb, root: root, mkGen: mkGen, parts: parts, execs: execs, reg: reg,
		killAt: killAt, rejoinAt: rejoinAt,
		leaderKillAt: leaderKillAt, ack: ack, waitFor: waitFor,
		promoCh: make(chan promoted, n), winner: -1,
	}
	fail := func(err error) (*replSet, error) {
		rs.Close()
		return nil, err
	}
	followers := make([]int, 0, n)
	for id := 1; id <= n; id++ {
		dir := fmt.Sprintf("%s/node%d", root, id)
		rep, err := newReplicaNode(mkGen, parts, execs)
		if err != nil {
			return fail(err)
		}
		fo := rep.followerOptions(dir)
		fo.Metrics = reg
		fo.WAL.Metrics = reg
		if leaderKillAt > 0 {
			// Election-enabled standby: peers are the other followers; a win is
			// reported so the batch stream can hand over to the new leader.
			id := id
			var peers []int
			for p := 1; p <= n; p++ {
				if p != id {
					peers = append(peers, p)
				}
			}
			fo.Peers = peers
			fo.ElectionTimeout = 150 * time.Millisecond
			fo.OnPromoted = func(term uint64) { rs.promoCh <- promoted{id: id, term: term} }
		}
		f, err := repl.StartFollower(lb, id, 0, fo)
		if err != nil {
			return fail(err)
		}
		rs.dirs = append(rs.dirs, dir)
		rs.reps = append(rs.reps, rep)
		rs.fls = append(rs.fls, f)
		followers = append(followers, id)
	}
	ldr, err := repl.OpenLeader(root+"/leader", lb, 0, followers, repl.Options{
		Ack: ack, WaitFor: waitFor, AckTimeout: 2 * time.Second,
		Metrics: reg, WAL: wal.Options{Metrics: reg},
	})
	if err != nil {
		return fail(err)
	}
	rs.leader = ldr
	return rs, nil
}

// LogBatch implements core.BatchLogger: replicate the batch input, then run
// the fault schedule. The engine calls it once per batch in commit order, so
// kill, rejoin and the leader failover all land deterministically between
// batches.
func (rs *replSet) LogBatch(epoch uint64, txns []*txn.Txn) error {
	if rs.newLeader != nil {
		// Post-failover: the promoted node owns the stream — it replicates to
		// the survivors and applies the batch on its own replica engine (its
		// follower-time apply hook sealed with the election win).
		if err := rs.newLeader.LogBatch(epoch, txns); err != nil {
			return err
		}
		rs.scratch = txn.AppendBatch(rs.scratch[:0], txns)
		if err := rs.reps[rs.winner].applyEncoded(rs.scratch); err != nil {
			return fmt.Errorf("promoted replica apply: %w", err)
		}
		rs.batches++
		return nil
	}
	if err := rs.leader.LogBatch(epoch, txns); err != nil {
		return err
	}
	rs.batches++
	if rs.killAt > 0 && rs.batches == rs.killAt {
		rs.kill()
	}
	if rs.rejoinAt > 0 && rs.batches == rs.rejoinAt {
		if err := rs.rejoin(); err != nil {
			return err
		}
	}
	if rs.leaderKillAt > 0 && rs.batches == rs.leaderKillAt {
		if err := rs.killLeader(); err != nil {
			return err
		}
	}
	return nil
}

// killLeader is the failover chaos point: SIGKILL the replication leader
// (sever its sockets mid-stream), wait for the followers' failure detectors
// to fire and their claim-exchange election to promote one of them, then
// reopen the winner's sealed log as the new stream head. The batch stream
// blocks here — the gap between the kill and the handover IS the failover
// downtime, and it is bounded by detector + election timeouts, not by any
// external coordinator.
func (rs *replSet) killLeader() error {
	rs.lb.Endpoint(0).Close()
	fmt.Printf("leader killed after batch %d — %d followers must elect a replacement on their own\n",
		rs.batches, len(rs.fls))
	start := time.Now()
	var won promoted
	select {
	case won = <-rs.promoCh:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("no follower promoted itself within 30s")
	}
	idx := won.id - 1
	var survivors []int
	for id := 1; id <= len(rs.fls); id++ {
		if id != won.id {
			survivors = append(survivors, id)
		}
	}
	waitFor := rs.waitFor
	if waitFor > len(survivors) {
		waitFor = len(survivors)
	}
	ldr, err := repl.OpenLeader(rs.dirs[idx], rs.lb, won.id, survivors, repl.Options{
		Ack: rs.ack, WaitFor: waitFor, AckTimeout: 2 * time.Second,
		Metrics: rs.reg, WAL: wal.Options{Metrics: rs.reg},
	})
	if err != nil {
		return fmt.Errorf("takeover on node %d: %w", won.id, err)
	}
	rs.newLeader, rs.winner = ldr, idx
	fmt.Printf("follower %d promoted to leader at term %d after batch %d (downtime %v)\n",
		won.id, won.term, rs.batches, time.Since(start).Round(time.Millisecond))
	return nil
}

// kill simulates SIGKILL on follower 1: sever its sockets, stop its
// goroutines, keep its log directory. The leader keeps committing against
// whatever quorum survives (degrading if the ack mode demanded this node).
func (rs *replSet) kill() {
	rs.lb.Endpoint(1).Close()
	rs.fls[0].Abandon()
	fmt.Printf("follower 1 killed after batch %d (leader continues on the surviving quorum)\n", rs.batches)
}

// rejoin restarts the killed follower while the leader is still streaming: a
// fresh transport on the same address, a fresh replica state machine, and a
// follower on the same log directory — it replays the local segments,
// requests the missing tail from the leader's log, and re-enters the live
// stream at a batch boundary.
func (rs *replSet) rejoin() error {
	if _, err := rs.lb.Restart(1); err != nil {
		return err
	}
	rep, err := newReplicaNode(rs.mkGen, rs.parts, rs.execs)
	if err != nil {
		return err
	}
	fo := rep.followerOptions(rs.dirs[0])
	fo.Metrics = rs.reg
	fo.WAL.Metrics = rs.reg
	f, err := repl.StartFollower(rs.lb, 1, 0, fo)
	if err != nil {
		return err
	}
	rs.reps[0], rs.fls[0] = rep, f
	fmt.Printf("follower 1 restarted after batch %d, rejoining mid-stream\n", rs.batches)
	return nil
}

// finish waits for every replica to catch up, then checks each one's state
// hash against the live cluster (and transitively the serial reference, when
// the run was deterministic — verifyHash already equated the two).
func (rs *replSet) finish(eng *dist.QueCCD, mkGen func() workload.Generator, parts int, hasRef bool) {
	ldr := rs.leader
	if rs.newLeader != nil {
		ldr = rs.newLeader
	}
	if err := ldr.WaitCaughtUp(30 * time.Second); err != nil {
		log.Fatalf("qotpd: replicas never caught up: %v (leader stats %+v)", err, ldr.Stats())
	}
	var tables []storage.TableID
	for _, ts := range mkGen().StoreConfig(parts).Tables {
		tables = append(tables, ts.ID)
	}
	clusterHash := dist.ClusterStateHash(eng.Stores(), tables)
	against := "the cluster state"
	if hasRef {
		against = "the serial reference"
	}
	for i, rep := range rs.reps {
		if got := rep.store.StateHash(); got != clusterHash {
			log.Fatalf("qotpd: replica %d state hash %x != cluster %x", i+1, got, clusterHash)
		}
		fmt.Printf("replica %d state hash matches %s\n", i+1, against)
	}
	st := ldr.Stats()
	if rs.rejoinAt > 0 && st.Rejoins == 0 {
		log.Fatalf("qotpd: follower restarted but never completed a rejoin: %+v", st)
	}
	fmt.Printf("replication: %d batches to %d replicas — rejoins=%d catchup=%d snapshots=%d degraded=%d shed=%d\n",
		rs.batches, len(rs.reps), st.Rejoins, st.CatchupRecords, st.SnapshotsSent, st.Degraded, st.Shed)
}

// Close tears the fleet down: leader first (stops the stream), then the
// followers, the mesh, and the temp logs.
func (rs *replSet) Close() {
	if rs.newLeader != nil {
		_ = rs.newLeader.Close()
	}
	if rs.leader != nil {
		_ = rs.leader.Close()
	}
	for _, f := range rs.fls {
		_ = f.Close()
	}
	for _, rep := range rs.reps {
		rep.eng.Close()
	}
	rs.lb.Close()
	_ = os.RemoveAll(rs.root)
}

// serveClients opens the client port and drives it with remote clients over
// real TCP, then reports per-transaction latency percentiles (enqueue to
// commit) and outcome accounting.
func serveClients(srv *serve.Server, gen workload.Generator, clients, ctxns, genChunk int, open bool) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ts := serve.ServeTCP(lis, srv, gen.Registry())
	defer ts.Close()
	fmt.Printf("client port listening on %s (%d clients x %d txns, %s loop)\n",
		ts.Addr(), clients, ctxns, map[bool]string{true: "open", false: "closed"}[open])

	// One generator feeds all clients: pre-generate and split round-robin so
	// the offered work is the same deterministic stream the harness would
	// run, chunked exactly as the serial reference generated it (see
	// workload.GenStream for why the chunking matters).
	stream := workload.GenStream(gen, clients*ctxns, genChunk)
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, aborted, failed := 0, 0, 0
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc, err := serve.DialTCP(ts.Addr().String())
			if err != nil {
				log.Fatalf("client %d: %v", c, err)
			}
			defer rc.Close()
			ctx := context.Background()
			var futs []*serve.Future
			ok, ab, bad := 0, 0, 0
			count := func(out serve.Outcome) {
				switch {
				case out.Err != nil:
					bad++
				case out.Committed:
					ok++
				default:
					ab++
				}
			}
			for i := c; i < len(stream); i += clients {
				if open {
					fut, err := rc.Submit(ctx, stream[i])
					if err != nil {
						log.Fatalf("client %d submit: %v", c, err)
					}
					futs = append(futs, fut)
					continue
				}
				out, err := rc.Exec(ctx, stream[i])
				if err != nil {
					log.Fatalf("client %d exec: %v", c, err)
				}
				count(out)
			}
			for _, fut := range futs {
				count(fut.Outcome())
			}
			mu.Lock()
			committed += ok
			aborted += ab
			failed += bad
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if committed+aborted+failed != len(stream) || failed > 0 {
		log.Fatalf("outcome accounting broken: committed=%d aborted=%d failed=%d of %d",
			committed, aborted, failed, len(stream))
	}
	snap := srv.Stats().Snap(elapsed)
	fmt.Printf("\n%d committed, %d aborted by logic in %v — %.0f txn/s through the client port\n",
		committed, aborted, elapsed.Round(time.Millisecond), snap.Throughput)
	fmt.Printf("per-txn latency (enqueue->commit): mean=%v p50=%v p99=%v p999=%v\n",
		snap.MeanLat, snap.P50, snap.P99, snap.P999)
}
