// Command qotpbench runs the paper-reproduction experiments (E1–E13, mapping
// to Table 2 and the extended figures — see DESIGN.md §6) and prints
// paper-style result tables.
//
// Usage:
//
//	qotpbench -list
//	qotpbench -experiment E3
//	qotpbench -experiment E13   # distributed TPC-C with cross-node deps
//	qotpbench -all -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/exploratory-systems/qotp/internal/bench"
)

func main() {
	var (
		expID = flag.String("experiment", "", "experiment id to run (E1..E13)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiments and exit")
		scale = flag.Int("scale", 1, "workload scale multiplier (batches x batch size)")
	)
	flag.Parse()

	sc := bench.DefaultScale
	sc.BatchSize *= *scale
	if sc.Threads > runtime.GOMAXPROCS(0)*4 {
		sc.Threads = runtime.GOMAXPROCS(0) * 4
	}

	switch {
	case *list:
		for _, e := range bench.Experiments(sc) {
			fmt.Printf("%-4s %s\n     expectation: %s\n", e.ID, e.Artifact, e.Expect)
		}
	case *all:
		for _, e := range bench.Experiments(sc) {
			report, _, err := bench.RunExperiment(e)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qotpbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println(report)
		}
	case *expID != "":
		e, err := bench.Find(*expID, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qotpbench:", err)
			os.Exit(1)
		}
		report, _, err := bench.RunExperiment(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qotpbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(report)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
