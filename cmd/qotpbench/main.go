// Command qotpbench runs the paper-reproduction experiments (E1–E21: E1–E15 mapping
// to Table 2 and the extended figures — see DESIGN.md §6) and prints
// paper-style result tables. With -json it additionally writes a
// machine-readable report; committed as BENCH_*.json files, those accumulate
// the repository's performance trajectory (CI's bench-smoke job seeds it).
//
// Usage:
//
//	qotpbench -list
//	qotpbench -experiment E3
//	qotpbench -experiment E14 -json BENCH_pipeline.json
//	qotpbench -all -scale 2
//	qotpbench -experiment E14 -smoke -json out.json   # CI-sized run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"github.com/exploratory-systems/qotp/internal/bench"
)

func main() {
	var (
		expID    = flag.String("experiment", "", "experiment id(s) to run, comma-separated (E1..E21)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Int("scale", 1, "workload scale multiplier (batches x batch size)")
		smoke    = flag.Bool("smoke", false, "tiny CI-sized scale (overrides -scale)")
		jsonPath = flag.String("json", "", "also write a machine-readable report to this file")
		note     = flag.String("note", "", "free-form note recorded in the JSON report (e.g. machine caveats)")
	)
	flag.Parse()

	sc := bench.DefaultScale
	sc.BatchSize *= *scale
	if *smoke {
		sc = bench.SmokeScale
	}
	if sc.Threads > runtime.GOMAXPROCS(0)*4 {
		sc.Threads = runtime.GOMAXPROCS(0) * 4
	}

	var report *bench.JSONReport
	if *jsonPath != "" {
		report = bench.NewJSONReport(sc)
		report.Note = *note
	}
	runOne := func(e bench.Experiment) {
		table, results, err := bench.RunExperiment(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qotpbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table)
		if report != nil {
			report.Add(e, results)
		}
	}

	switch {
	case *list:
		for _, e := range bench.Experiments(sc) {
			fmt.Printf("%-4s %s\n     expectation: %s\n", e.ID, e.Artifact, e.Expect)
		}
		return
	case *all:
		for _, e := range bench.Experiments(sc) {
			runOne(e)
		}
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			e, err := bench.Find(strings.TrimSpace(id), sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qotpbench:", err)
				os.Exit(1)
			}
			runOne(e)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if report != nil {
		if err := report.WriteFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "qotpbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
